// Package shared implements the shared-memory parallel μDBSCAN the paper
// lists as future work (§VII): one process, many cores, the same exact
// clustering. The μR-tree is built once (its per-MC finalize and reachable
// phases themselves parallelized through mc.Options.Workers) and then
// queried concurrently; the cluster structure lives in a lock-striped
// concurrent union-find.
//
// Exactness under concurrency follows the same arguments as the sequential
// algorithm plus one extra device: when a worker observes a neighbor whose
// core flag is not (yet) set, the link is recorded in a per-worker deferred
// list and re-examined after all core flags are final, so no core-core edge
// can be lost to a stale read. Border assignment uses compare-and-swap
// claims, so every border joins exactly one cluster; which one may vary
// between runs, which the DBSCAN exactness criteria permit.
//
// Per-worker state discipline: every lazily-filled list (wndq, deferred,
// noise) and every counter is an arena owned by exactly one worker, allocated
// once — sized to the worker count — when the run state is constructed.
// Workers address their arena as s.xxx[w]; the outer slices never grow, so
// no interior pointer into a growable slice ever escapes and no lock is
// needed. (An earlier lazily-grown design handed workers *[]T pointers into
// an outer slice that another worker's growth could reallocate, silently
// dropping deferred links; `go test -race` caught it.)
package shared

import (
	"runtime"
	"sync/atomic"
	"time"

	"mudbscan/internal/clustering"
	"mudbscan/internal/core"
	"mudbscan/internal/geom"
	"mudbscan/internal/mc"
	"mudbscan/internal/par"
	"mudbscan/internal/unionfind"
)

// Options tunes the shared-memory run; the zero value means defaults.
type Options struct {
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Fanout is the μR-tree node capacity.
	Fanout int
	// Arenas lends per-worker query scratch: worker w borrows Arenas[w] for
	// the run and the grown buffers are handed back when Run completes, so a
	// serving pool reuses warm scratch across jobs (see core.Arena). Extra
	// entries are ignored; with fewer entries than workers the uncovered
	// workers allocate fresh scratch. Each lent arena must not be used by
	// anything else while the run executes.
	Arenas []*core.Arena
}

// StepTimes records the wall-clock split of a shared-memory run over the
// same four phases the sequential Stats report (Table III): every phase is
// parallel, so each entry is the wall time of its parallel section.
type StepTimes struct {
	TreeConstruction time.Duration // micro-cluster + μR-tree build, MC classification
	FindingReachable time.Duration // reachable micro-cluster lists
	Clustering       time.Duration // preliminary unions + neighborhood queries
	PostProcessing   time.Duration // deferred links, wndq-core merging, noise rectification
}

// Total returns the sum of all step durations.
func (s StepTimes) Total() time.Duration {
	return s.TreeConstruction + s.FindingReachable + s.Clustering + s.PostProcessing
}

// Stats reports the work performed, at parity with core.Stats: per-phase
// wall times, distance-computation counts and the wndq split are folded from
// per-worker counters after the parallel sections complete.
type Stats struct {
	NumMCs       int
	Queries      int64
	QueriesSaved int64
	// DistCalcs counts point-to-point distance computations across the
	// query and post-processing phases.
	DistCalcs int64
	// WndqFromMCs and WndqDynamic split the query-free core proofs between
	// DMC/CMC classification and dense ε/2-neighborhoods.
	WndqFromMCs int64
	WndqDynamic int64
	Workers     int
	// Steps is the wall-clock phase split.
	Steps StepTimes
}

// QuerySavedPct returns the percentage of potential queries saved.
func (s *Stats) QuerySavedPct() float64 {
	total := s.Queries + s.QueriesSaved
	if total == 0 {
		return 0
	}
	return 100 * float64(s.QueriesSaved) / float64(total)
}

// Run clusters pts with the multi-core μDBSCAN and returns the exact DBSCAN
// result.
func Run(pts []geom.Point, eps float64, minPts int, opts Options) (*clustering.Result, *Stats) {
	n := len(pts)
	st := &Stats{}
	if n == 0 {
		return &clustering.Result{}, st
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st.Workers = workers

	// Step 1: μR-tree construction; the per-MC finalize work runs on the
	// same worker count as the rest of the pipeline.
	start := time.Now() //mulint:allow determinism/time stats timing; never reaches clustering output
	ix := mc.Build(pts, eps, minPts, mc.Options{
		Fanout:        opts.Fanout,
		SkipReachable: true,
		Workers:       workers,
	})
	st.Steps.TreeConstruction = time.Since(start)
	st.NumMCs = ix.NumMCs()

	// Step 2: reachable lists, parallel over MCs against the immutable
	// center tree.
	start = time.Now() //mulint:allow determinism/time stats timing; never reaches clustering output
	ix.ComputeReachable()
	st.Steps.FindingReachable = time.Since(start)

	s := newState(ix, eps, minPts, workers, opts.Arenas)

	// Step 3a: preliminary clusters from DMC/CMC, parallel over MCs. Each MC
	// is handled by exactly one worker, so the per-MC wholeness flag is a
	// plain bool: when every member's union was performed (none deferred to
	// another cluster's claim), the MC occupies a single union-find
	// component forever — unions only merge — which step 4b exploits.
	start = time.Now() //mulint:allow determinism/time stats timing; never reaches clustering output
	par.For(workers, len(ix.MCs), func(w, i int) {
		z := ix.MCs[i]
		if z.Kind == mc.SMC {
			return
		}
		center := int32(z.CenterID)
		s.markWndq(w, center, true)
		if z.Kind == mc.DMC {
			for _, q := range z.InnerIDs {
				s.markWndq(w, q, true)
			}
		}
		whole := true
		for _, p := range z.Members {
			if p != center && !s.linkFromCore(w, center, p) {
				whole = false
			}
		}
		s.mcWhole[i] = whole
	})

	// Step 3b: neighborhood queries for points not proven core, parallel.
	par.For(workers, n, func(w, i int) {
		if s.wndq[i].Load() {
			return
		}
		s.counters[w].queries++
		s.processPoint(w, i)
	})
	st.Steps.Clustering = time.Since(start)

	// Step 4a: deferred links — all core flags are final now, so any stale
	// observation is resolved.
	start = time.Now() //mulint:allow determinism/time stats timing; never reaches clustering output
	deferred := collect(s.deferred)
	par.For(workers, len(deferred), func(_, i int) {
		d := deferred[i]
		if s.core[d[1]].Load() {
			s.uf.Union(int(d[0]), int(d[1]))
		}
	})

	// Step 4b: post-process wndq cores (Algorithm 7), with the sequential
	// postProcessCore's two union-structure exploitations, both sound under
	// concurrency because all clustering-phase unions completed at the
	// par.For barrier and unions only merge:
	//
	//   - pid's root is cached across candidates; a candidate whose root
	//     matches was already merged with pid (conclusive — set membership
	//     only grows), and a stale mismatch merely costs a redundant
	//     distance check and a no-op union, never a lost edge;
	//   - an MC flagged whole in step 3a shares one component permanently,
	//     so a single center lookup decides it, and after the first merging
	//     union the rest of the MC is skipped.
	wndqList := collect(s.wndqLists)
	eps2 := eps * eps
	prune2 := 4 * eps * eps
	par.For(workers, len(wndqList), func(w, k int) {
		pid := wndqList[k]
		p := s.set.Point(int(pid))
		rootP := s.uf.Find(int(pid))
		for _, rid := range ix.MCs[ix.PointMC[pid]].Reach {
			z := ix.MCs[rid]
			if s.kern(p, z.Center) >= prune2 {
				continue
			}
			if !z.Aux.RootMBR().OverlapsRegion(p, eps) {
				continue
			}
			wholeMC := s.mcWhole[rid]
			if wholeMC && s.uf.Find(z.CenterID) == rootP {
				continue
			}
			for _, q := range z.Members {
				if q == pid || !s.core[q].Load() {
					continue
				}
				if !wholeMC && s.uf.Find(int(q)) == rootP {
					continue
				}
				s.counters[w].distCalcs++
				if s.kern(p, s.set.Row(int(q))) >= eps2 {
					continue
				}
				s.uf.Union(int(pid), int(q))
				rootP = s.uf.Find(int(pid))
				if wholeMC {
					// The union just absorbed the whole micro-cluster.
					break
				}
			}
		}
	})

	// Step 4c: noise rectification (Algorithm 8).
	noise := collect(s.noiseLists)
	par.For(workers, len(noise), func(_, k int) {
		e := noise[k]
		if s.core[e.id].Load() {
			return
		}
		for _, q := range e.nbhd {
			if s.core[q].Load() {
				if s.assigned[e.id].CompareAndSwap(false, true) {
					s.uf.Union(int(q), int(e.id))
				}
				break
			}
		}
	})

	st.Steps.PostProcessing = time.Since(start)

	// Fold the per-worker counters now that every parallel section is done.
	for w := range s.counters {
		c := &s.counters[w]
		st.Queries += c.queries
		st.DistCalcs += c.distCalcs
		st.WndqFromMCs += c.wndqFromMCs
		st.WndqDynamic += c.wndqDynamic
	}
	st.QueriesSaved = int64(n) - st.Queries

	// Extract components in parallel: all unions are complete, so the
	// lock-free Find is exact and stable, and the per-index writes are
	// disjoint.
	comp := make([]int, n)
	coreFlags := make([]bool, n)
	par.For(workers, n, func(_, i int) {
		comp[i] = s.uf.Find(i)
		coreFlags[i] = s.core[i].Load()
	})
	s.releaseScratch(opts.Arenas)
	return clustering.FromUnionLabels(comp, coreFlags), st
}

type noiseEntry struct {
	id   int32
	nbhd []int32
}

// workerCounters accumulates one worker's statistics without atomics; the
// pad keeps adjacent workers' counters on distinct cache lines so the hot
// distCalcs increments do not false-share.
type workerCounters struct {
	queries     int64
	distCalcs   int64
	wndqFromMCs int64
	wndqDynamic int64
	_           [32]byte
}

type state struct {
	set    *geom.PointSet
	kern   geom.DistSqKernel
	eps    float64
	minPts int
	ix     *mc.Index
	uf     *unionfind.Concurrent

	core     []atomic.Bool
	wndq     []atomic.Bool
	assigned []atomic.Bool

	// Per-worker arenas, sized to the worker count at construction and never
	// grown: worker w owns index w of each outer slice exclusively, so the
	// appends below are unsynchronized by design. Interior pointers into
	// these outer slices are forbidden — see the package comment. The nbhd and
	// inner scratch buffers make every steady-state ε-query allocation-free:
	// worker w reuses its own pair for each query, copying out only what must
	// outlive the query (provisional noise neighborhoods).
	wndqLists  [][]int32
	deferred   [][][2]int32
	noiseLists [][]noiseEntry
	nbhdBufs   [][]int
	innerBufs  [][]bool
	counters   []workerCounters

	// mcWhole[id] reports that every member of MC id shares the center's
	// union-find component permanently (set in step 3a, where each MC is
	// owned by one worker; read only after that phase's barrier).
	mcWhole []bool
}

func newState(ix *mc.Index, eps float64, minPts, workers int, arenas []*core.Arena) *state {
	n := ix.Points.Len()
	s := &state{
		set: ix.Points, kern: geom.KernelFor(ix.Dim),
		eps: eps, minPts: minPts, ix: ix,
		uf:         unionfind.NewConcurrent(n),
		core:       make([]atomic.Bool, n),
		wndq:       make([]atomic.Bool, n),
		assigned:   make([]atomic.Bool, n),
		wndqLists:  make([][]int32, workers),
		deferred:   make([][][2]int32, workers),
		noiseLists: make([][]noiseEntry, workers),
		nbhdBufs:   make([][]int, workers),
		innerBufs:  make([][]bool, workers),
		counters:   make([]workerCounters, workers),
		mcWhole:    make([]bool, ix.NumMCs()),
	}
	for w := 0; w < workers && w < len(arenas); w++ {
		if a := arenas[w]; a != nil {
			s.nbhdBufs[w], s.innerBufs[w] = a.Nbhd[:0], a.Inner[:0]
		}
	}
	return s
}

// releaseScratch hands each worker's (possibly grown) query scratch back to
// its lent arena after every parallel section has completed — the per-worker
// ownership that made the in-run appends safe also makes the hand-back a
// plain copy of slice headers.
func (s *state) releaseScratch(arenas []*core.Arena) {
	for w := 0; w < len(s.nbhdBufs) && w < len(arenas); w++ {
		if a := arenas[w]; a != nil {
			a.Nbhd, a.Inner = s.nbhdBufs[w], s.innerBufs[w]
		}
	}
}

// markWndq declares point id core without a query; the atomic swap makes the
// transition exactly-once, so exactly one worker records the point and the
// statistic. fromMC distinguishes DMC/CMC classification from dynamic dense
// ε/2-ball promotion.
func (s *state) markWndq(w int, id int32, fromMC bool) {
	if s.core[id].Swap(true) {
		return
	}
	s.wndq[id].Store(true)
	s.wndqLists[w] = append(s.wndqLists[w], id)
	if fromMC {
		s.counters[w].wndqFromMCs++
	} else {
		s.counters[w].wndqDynamic++
	}
}

// linkFromCore unions core point c with q, claiming q as a border via CAS
// when q is not known core, and reports whether a union was performed. When
// the claim is lost the link is deferred instead, so that a stale non-core
// observation of a true core cannot lose the edge.
func (s *state) linkFromCore(w int, c, q int32) bool {
	if s.core[q].Load() {
		s.uf.Union(int(c), int(q))
		return true
	}
	if s.assigned[q].CompareAndSwap(false, true) {
		s.uf.Union(int(c), int(q))
		return true
	}
	s.deferred[w] = append(s.deferred[w], [2]int32{c, q})
	return false
}

// processPoint is the per-worker twin of core.(*run).processPoint and keeps
// its steady-state zero-allocation contract (core's TestProcessPointZeroAllocs
// covers the shared body of the algorithm; the per-worker scratch buffers
// here follow the same warm-up discipline).
//
//mulint:noalloc cross-ref core TestProcessPointZeroAllocs; cold paths below carry explicit allows
func (s *state) processPoint(w, i int) {
	p := s.set.Point(i)
	half2 := (s.eps / 2) * (s.eps / 2)
	var calcs int
	nbhd := s.nbhdBufs[w][:0]
	nbhd, calcs, _ = s.ix.EpsNeighborhoodInto(p, i, nbhd)
	s.nbhdBufs[w] = nbhd
	if cap(s.innerBufs[w]) < len(nbhd) {
		s.innerBufs[w] = make([]bool, len(nbhd)) //mulint:allow noalloc/alloc cold path: per-worker scratch grows until warmed
	}
	inner := s.innerBufs[w][:len(nbhd)]
	innerCount := 0
	for k, q := range nbhd {
		in := s.kern(p, s.set.Row(q)) < half2
		inner[k] = in
		if in {
			innerCount++
		}
	}
	// Query cost plus the inner-circle tests, matching core.Stats accounting.
	s.counters[w].distCalcs += int64(calcs) + int64(len(nbhd))

	if len(nbhd) < s.minPts {
		if s.assigned[i].Load() {
			return
		}
		for _, q := range nbhd {
			if s.core[q].Load() {
				if s.assigned[i].CompareAndSwap(false, true) {
					s.uf.Union(q, i)
				}
				return
			}
		}
		// The scratch buffer is reused on the next query, so the stored
		// neighborhood must be an owned copy.
		saved := make([]int32, len(nbhd)) //mulint:allow noalloc/alloc noise path: stored neighborhood must outlive the scratch buffer
		for k, q := range nbhd {
			saved[k] = int32(q)
		}
		s.noiseLists[w] = append(s.noiseLists[w], noiseEntry{id: int32(i), nbhd: saved}) //mulint:allow noalloc/alloc noise path: entry escapes into the deferred-noise list
		return
	}

	s.core[i].Store(true)
	if innerCount >= s.minPts {
		for k, q := range nbhd {
			if inner[k] && q != i && !s.core[q].Load() {
				s.markWndq(w, int32(q), false)
			}
		}
	}
	for _, q := range nbhd {
		if q != i {
			s.linkFromCore(w, int32(i), int32(q))
		}
	}
}

func collect[T any](lists [][]T) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]T, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}
