// Package shared implements the shared-memory parallel μDBSCAN the paper
// lists as future work (§VII): one process, many cores, the same exact
// clustering. The μR-tree is built once and then queried concurrently; the
// cluster structure lives in a lock-striped concurrent union-find.
//
// Exactness under concurrency follows the same arguments as the sequential
// algorithm plus one extra device: when a worker observes a neighbor whose
// core flag is not (yet) set, the link is recorded in a per-worker deferred
// list and re-examined after all core flags are final, so no core-core edge
// can be lost to a stale read. Border assignment uses compare-and-swap
// claims, so every border joins exactly one cluster; which one may vary
// between runs, which the DBSCAN exactness criteria permit.
package shared

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mudbscan/internal/clustering"
	"mudbscan/internal/geom"
	"mudbscan/internal/mc"
	"mudbscan/internal/unionfind"
)

// Options tunes the shared-memory run; the zero value means defaults.
type Options struct {
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Fanout is the μR-tree node capacity.
	Fanout int
}

// Stats reports the work performed.
type Stats struct {
	NumMCs       int
	Queries      int64
	QueriesSaved int64
	Workers      int
}

// Run clusters pts with the multi-core μDBSCAN and returns the exact DBSCAN
// result.
func Run(pts []geom.Point, eps float64, minPts int, opts Options) (*clustering.Result, *Stats) {
	n := len(pts)
	st := &Stats{}
	if n == 0 {
		return &clustering.Result{}, st
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st.Workers = workers

	ix := mc.Build(pts, eps, minPts, mc.Options{Fanout: opts.Fanout})
	st.NumMCs = ix.NumMCs()

	s := &state{
		pts: pts, eps: eps, minPts: minPts, ix: ix,
		uf:       unionfind.NewConcurrent(n),
		core:     make([]atomic.Bool, n),
		wndq:     make([]atomic.Bool, n),
		assigned: make([]atomic.Bool, n),
	}

	// Phase 1: preliminary clusters from DMC/CMC, parallel over MCs.
	parallelFor(workers, len(ix.MCs), func(w, i int) {
		z := ix.MCs[i]
		if z.Kind == mc.SMC {
			return
		}
		center := int32(z.CenterID)
		s.markWndq(w, center)
		if z.Kind == mc.DMC {
			for _, q := range z.InnerIDs {
				s.markWndq(w, q)
			}
		}
		for _, p := range z.Members {
			if p != center {
				s.linkFromCore(w, center, p)
			}
		}
	})

	// Phase 2: neighborhood queries for points not proven core, parallel.
	var queries int64
	parallelFor(workers, n, func(w, i int) {
		if s.wndq[i].Load() {
			return
		}
		atomic.AddInt64(&queries, 1)
		s.processPoint(w, i)
	})
	st.Queries = queries
	st.QueriesSaved = int64(n) - queries

	// Phase 3: deferred links — all core flags are final now, so any stale
	// observation is resolved.
	deferred := collect(s.deferred)
	parallelFor(workers, len(deferred), func(_, i int) {
		d := deferred[i]
		if s.core[d[1]].Load() {
			s.uf.Union(int(d[0]), int(d[1]))
		}
	})

	// Phase 4: post-process wndq cores (Algorithm 7).
	wndqList := collect(s.wndqLists)
	parallelFor(workers, len(wndqList), func(_, k int) {
		pid := wndqList[k]
		p := pts[pid]
		ix.VisitReachableMembers(p, int(pid), func(q int32) {
			if q == pid || !s.core[q].Load() || s.uf.Same(int(pid), int(q)) {
				return
			}
			if geom.Within(p, pts[q], eps) {
				s.uf.Union(int(pid), int(q))
			}
		})
	})

	// Phase 5: noise rectification (Algorithm 8).
	noise := collectNoise(s.noiseLists)
	parallelFor(workers, len(noise), func(_, k int) {
		e := noise[k]
		if s.core[e.id].Load() {
			return
		}
		for _, q := range e.nbhd {
			if s.core[q].Load() {
				if s.assigned[e.id].CompareAndSwap(false, true) {
					s.uf.Union(int(q), int(e.id))
				}
				break
			}
		}
	})

	frozen := s.uf.Freeze()
	comp := make([]int, n)
	coreFlags := make([]bool, n)
	for i := range comp {
		comp[i] = frozen.Find(i)
		coreFlags[i] = s.core[i].Load()
	}
	return clustering.FromUnionLabels(comp, coreFlags), st
}

type noiseEntry struct {
	id   int32
	nbhd []int32
}

type state struct {
	pts    []geom.Point
	eps    float64
	minPts int
	ix     *mc.Index
	uf     *unionfind.Concurrent

	core     []atomic.Bool
	wndq     []atomic.Bool
	assigned []atomic.Bool

	mu         sync.Mutex
	wndqLists  [][]int32
	deferred   [][][2]int32
	noiseLists [][]noiseEntry
}

// perWorker returns worker w's slice of a lazily-grown per-worker store.
func perWorker[T any](mu *sync.Mutex, store *[][]T, w int) *[]T {
	mu.Lock()
	for len(*store) <= w {
		*store = append(*store, nil)
	}
	s := &(*store)[w]
	mu.Unlock()
	return s
}

func (s *state) markWndq(w int, id int32) {
	if s.core[id].Swap(true) {
		return
	}
	s.wndq[id].Store(true)
	lst := perWorker(&s.mu, &s.wndqLists, w)
	*lst = append(*lst, id)
}

// linkFromCore unions core point c with q, claiming q as a border via CAS
// when q is not known core; the link is also deferred so that a stale
// non-core observation of a true core cannot lose the edge.
func (s *state) linkFromCore(w int, c, q int32) {
	if s.core[q].Load() {
		s.uf.Union(int(c), int(q))
		return
	}
	if s.assigned[q].CompareAndSwap(false, true) {
		s.uf.Union(int(c), int(q))
		return
	}
	d := perWorker(&s.mu, &s.deferred, w)
	*d = append(*d, [2]int32{c, q})
}

func (s *state) processPoint(w, i int) {
	p := s.pts[i]
	half2 := (s.eps / 2) * (s.eps / 2)
	var nbhd []int32
	var inner []bool
	innerCount := 0
	s.ix.EpsNeighborhood(p, i, func(id int, pt geom.Point) {
		nbhd = append(nbhd, int32(id))
		in := geom.DistSq(p, pt) < half2
		inner = append(inner, in)
		if in {
			innerCount++
		}
	})

	if len(nbhd) < s.minPts {
		if s.assigned[i].Load() {
			return
		}
		for _, q := range nbhd {
			if s.core[q].Load() {
				if s.assigned[i].CompareAndSwap(false, true) {
					s.uf.Union(int(q), i)
				}
				return
			}
		}
		lst := perWorker(&s.mu, &s.noiseLists, w)
		*lst = append(*lst, noiseEntry{id: int32(i), nbhd: nbhd})
		return
	}

	s.core[i].Store(true)
	if innerCount >= s.minPts {
		for k, q := range nbhd {
			if inner[k] && int(q) != i && !s.core[q].Load() {
				s.markWndq(w, q)
			}
		}
	}
	for _, q := range nbhd {
		if int(q) != i {
			s.linkFromCore(w, int32(i), q)
		}
	}
}

func collect[T any](lists [][]T) []T {
	var out []T
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

func collectNoise(lists [][]noiseEntry) []noiseEntry {
	var out []noiseEntry
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// parallelFor runs fn(worker, i) for i in [0, n) across the given workers.
func parallelFor(workers, n int, fn func(w, i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	const chunk = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				start := atomic.AddInt64(&next, chunk) - chunk
				if start >= int64(n) {
					return
				}
				end := start + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(w, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}
