// Command mulint runs the repo's invariant catalog (internal/analysis) over
// the module: determinism (no map-iteration-order leaks, no wall-clock or
// global-RNG state in algorithm packages), zero-alloc hot paths
// (//mulint:noalloc), concurrency discipline (//mulint:inline reachability,
// no by-value lock copies), codec/transport error discipline, wire-decode
// guard dominance (decodesafe), goroutine join coverage (leakcheck), and
// wire-protocol schema drift against wire.lock (wireproto).
//
// Usage:
//
//	go run ./cmd/mulint ./...
//	go run ./cmd/mulint -json ./...
//
// The argument form mirrors go vet for CI ergonomics, but the tool always
// analyzes the whole module containing the working directory (the invariants
// are cross-package, so partial loads would weaken them). Exit status is 1
// when any diagnostic survives //mulint:allow suppression. With -json each
// diagnostic is one JSON object per line ({file, line, col, rule, msg}) for
// machine consumers — CI feeds this to a problem matcher.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mudbscan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mulint", flag.ContinueOnError)
	timing := fs.Bool("time", false, "print load/analysis wall-clock timing to stderr")
	asJSON := fs.Bool("json", false, "emit one JSON object per diagnostic line instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := "."
	if fs.NArg() > 0 && fs.Arg(0) != "./..." {
		dir = fs.Arg(0)
	}

	loadStart := time.Now()
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mulint:", err)
		return 2
	}
	loadDur := time.Since(loadStart)

	runStart := time.Now()
	diags := analysis.Run(prog, analysis.All())
	runDur := time.Since(runStart)

	if *timing {
		fmt.Fprintf(os.Stderr, "mulint: loaded %d packages in %v, analyzed in %v\n",
			len(prog.Packages), loadDur.Round(time.Millisecond), runDur.Round(time.Millisecond))
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			// One object per line, stable field order via the struct.
			enc.Encode(struct {
				File string `json:"file"`
				Line int    `json:"line"`
				Col  int    `json:"col"`
				Rule string `json:"rule"`
				Msg  string `json:"msg"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg})
			continue
		}
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mulint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
