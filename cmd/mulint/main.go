// Command mulint runs the repo's invariant catalog (internal/analysis) over
// the module: determinism (no map-iteration-order leaks, no wall-clock or
// global-RNG state in algorithm packages), zero-alloc hot paths
// (//mulint:noalloc), concurrency discipline (//mulint:inline reachability,
// no by-value lock copies), and codec/transport error discipline.
//
// Usage:
//
//	go run ./cmd/mulint ./...
//
// The argument form mirrors go vet for CI ergonomics, but the tool always
// analyzes the whole module containing the working directory (the invariants
// are cross-package, so partial loads would weaken them). Exit status is 1
// when any diagnostic survives //mulint:allow suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mudbscan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mulint", flag.ContinueOnError)
	timing := fs.Bool("time", false, "print load/analysis wall-clock timing to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := "."
	if fs.NArg() > 0 && fs.Arg(0) != "./..." {
		dir = fs.Arg(0)
	}

	loadStart := time.Now()
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mulint:", err)
		return 2
	}
	loadDur := time.Since(loadStart)

	runStart := time.Now()
	diags := analysis.Run(prog, analysis.All())
	runDur := time.Since(runStart)

	if *timing {
		fmt.Fprintf(os.Stderr, "mulint: loaded %d packages in %v, analyzed in %v\n",
			len(prog.Packages), loadDur.Round(time.Millisecond), runDur.Round(time.Millisecond))
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mulint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
