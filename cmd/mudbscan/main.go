// Command mudbscan clusters a dataset file with μDBSCAN and writes one
// cluster label per input point.
//
// Usage:
//
//	mudbscan -eps 0.5 -minpts 5 [-mode seq|cell|auto|parallel|dist|stream]
//	         [-ranks 8] [-dist-serial] [-hardened] [-chaos-seed 3] [-workers 4]
//	         [-lambda 0.01] [-prune-below 0.1]
//	         [-net tcp|unix|launch] [-rank N] [-peers a,b,...]
//	         [-in points.csv] [-out labels.txt] [-stats]
//
// The input is CSV (one point per line; comma, space, tab or semicolon
// separated) or the compact binary format produced by datagen -format bin
// (detected by extension .bin). "-" reads stdin. Labels are written one per
// line: a cluster id in [0, #clusters) or -1 for noise.
//
// -mode seq is the sequential μR-tree engine, -mode cell the grid cell
// engine (exact and byte-identical to seq, typically faster at low
// dimensionality; -workers bounds its parallelism), and -mode auto profiles
// the dataset and picks between them (-stats reports which engine ran).
//
// -mode stream feeds the rows through the streaming tier in order and labels
// them from the final exact snapshot — identical to seq by default (landmark
// window). With -lambda > 0 the window is damped: rows that expired before
// the end of the stream come out as noise. -workers sets the ingest shard
// count, which never changes the labels.
//
// With -net, -mode dist leaves the single-process simulation: each rank is a
// separate OS process and the ranks exchange messages over real sockets.
// `-net tcp -rank N -peers host:p0,host:p1,...` runs one rank of the world
// (start one such process per peer-list entry; rank 0 writes the labels);
// `-net launch` forks all -ranks rank processes on loopback itself.
//
// Exit status: 0 on success, 1 on runtime errors, 2 on usage errors.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mudbscan"
	"mudbscan/internal/data"
	"mudbscan/internal/geom"
	"mudbscan/internal/prof"
)

func main() {
	os.Exit(exitCode(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr), os.Stderr))
}

// usageError marks an error caused by the invocation rather than the run.
// printed records whether the flag package already reported it (its parse
// errors print the message and usage before returning), so main reports
// every usage error exactly once — the historical ContinueOnError behaviour
// printed parse errors twice.
type usageError struct {
	err     error
	printed bool
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// usagef builds a not-yet-printed usage error.
func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// exitCode maps run's error to the process exit status: 0 for success and
// -h/-help, 2 for usage errors (reported exactly once), 1 for everything
// else.
func exitCode(err error, stderr io.Writer) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.printed {
			fmt.Fprintln(stderr, "mudbscan:", ue.err)
		}
		return 2
	}
	fmt.Fprintln(stderr, "mudbscan:", err)
	return 1
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mudbscan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		eps     = fs.Float64("eps", 0, "DBSCAN ε radius (required, > 0)")
		minPts  = fs.Int("minpts", 5, "DBSCAN MinPts density threshold")
		mode    = fs.String("mode", "seq", "execution mode: seq, cell, auto, parallel, dist or stream")
		lambda  = fs.Float64("lambda", 0, "decay rate for -mode stream (0 = landmark window, nothing expires)")
		prune   = fs.Float64("prune-below", 0, "expiry weight threshold for -mode stream -lambda (0 = default 0.1)")
		ranks   = fs.Int("ranks", 8, "simulated ranks for -mode dist (power of two)")
		distSer = fs.Bool("dist-serial", false, "run -mode dist ranks one at a time (isolation timing) instead of concurrently")
		harden  = fs.Bool("hardened", false, "wrap -mode dist messages in checksummed ack/retransmit envelopes")
		chSeed  = fs.Int64("chaos-seed", 0, "inject deterministic network faults into -mode dist from this seed (0 = off; implies -hardened)")
		workers = fs.Int("workers", 0, "goroutines for -mode parallel, cell and auto (0 = GOMAXPROCS)")
		inPath  = fs.String("in", "-", "input dataset (CSV, or .bin binary; - = stdin)")
		outPath = fs.String("out", "-", "output labels file (- = stdout)")
		stats   = fs.Bool("stats", false, "print run statistics to stderr")
		suggest = fs.Bool("suggest-eps", false, "print a suggested eps from the k-distance elbow and exit")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		netMode = fs.String("net", "", "run -mode dist over real sockets: tcp, unix (one rank per process) or launch (fork all ranks)")
		rank    = fs.Int("rank", -1, "this process's rank for -net tcp|unix")
		peers   = fs.String("peers", "", "comma-separated rank addresses for -net tcp|unix (entry i = rank i's listen address)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// ContinueOnError already printed the message and usage to stderr.
		return &usageError{err: err, printed: true}
	}
	if *eps <= 0 && !*suggest {
		return usagef("-eps is required and must be positive")
	}
	netCfg, err := parseNetFlags(fs, *netMode, *rank, *peers, *mode, *ranks, *distSer, *chSeed)
	if err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	pts, err := readPoints(*inPath, stdin)
	if err != nil {
		return err
	}
	if *suggest {
		rows := make([][]float64, len(pts))
		for i, p := range pts {
			rows[i] = p
		}
		e, err := mudbscan.SuggestEps(rows, *minPts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%g\n", e)
		return nil
	}
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = p
	}

	start := time.Now()
	var result *mudbscan.Result
	switch *mode {
	case "seq":
		var st *mudbscan.SeqStats
		result, st, err = mudbscan.ClusterWithStats(rows, *eps, *minPts)
		if err == nil && *stats {
			fmt.Fprintf(stderr, "n=%d m=%d queries=%d saved=%d (%.2f%%) time=%v\n",
				len(pts), st.NumMCs, st.Queries, st.QueriesSaved, st.QuerySavedPct(), time.Since(start))
		}
	case "cell", "auto":
		engine := mudbscan.EngineCell
		if *mode == "auto" {
			engine = mudbscan.EngineAuto
		}
		var st *mudbscan.SeqStats
		result, st, err = mudbscan.ClusterWithStats(rows, *eps, *minPts,
			mudbscan.WithEngine(engine), mudbscan.WithWorkers(*workers))
		if err == nil && *stats {
			if *mode == "auto" {
				fmt.Fprintf(stderr, "engine=%s\n", mudbscan.ChooseEngine(rows, *eps, *minPts))
			}
			// m is cells under the cell engine, micro-clusters under μR-tree.
			fmt.Fprintf(stderr, "n=%d m=%d queries=%d saved=%d (%.2f%%) time=%v\n",
				len(pts), st.NumMCs, st.Queries, st.QueriesSaved, st.QuerySavedPct(), time.Since(start))
		}
	case "parallel":
		var st *mudbscan.ParStats
		result, st, err = mudbscan.ClusterParallel(rows, *eps, *minPts, mudbscan.WithWorkers(*workers))
		if err == nil && *stats {
			fmt.Fprintf(stderr, "n=%d m=%d workers=%d queries=%d saved=%d (%.2f%%) distcalcs=%d time=%v\n",
				len(pts), st.NumMCs, st.Workers, st.Queries, st.QueriesSaved, st.QuerySavedPct(), st.DistCalcs, time.Since(start))
			fmt.Fprintf(stderr, "steps: tree=%v reach=%v cluster=%v post=%v\n",
				st.Steps.TreeConstruction, st.Steps.FindingReachable,
				st.Steps.Clustering, st.Steps.PostProcessing)
		}
	case "dist":
		if netCfg != nil {
			if netCfg.launch {
				return runLaunch(*ranks, pts, *eps, *minPts, *stats, *outPath, stdout, stderr)
			}
			return runNetRank(netCfg, pts, *eps, *minPts, *stats, *outPath, stdout, stderr, start)
		}
		var distOpts []mudbscan.Option
		if *distSer {
			distOpts = append(distOpts, mudbscan.WithSerialSimulation())
		}
		if *harden {
			distOpts = append(distOpts, mudbscan.WithHardenedComms())
		}
		if *chSeed != 0 {
			distOpts = append(distOpts, mudbscan.WithFaultInjection(*chSeed))
		}
		var st *mudbscan.DistStats
		result, st, err = mudbscan.ClusterDistributed(rows, *eps, *minPts, *ranks, distOpts...)
		if err == nil && *stats {
			fmt.Fprintf(stderr, "n=%d ranks=%d m=%d halo=%d commBytes=%d wallclock=%v simulated=%v time=%v\n",
				len(pts), st.Ranks, st.NumMCs, st.HaloPoints, st.Comm.TotalBytes(),
				st.WallClock, st.Phases.Total(), time.Since(start))
			if *harden || *chSeed != 0 {
				fmt.Fprintf(stderr, "reliability: envBytes=%d retx=%d timeouts=%d corruptDropped=%d dupDropped=%d\n",
					st.Comm.EnvelopeBytes, st.Comm.Retransmits, st.Comm.Timeouts,
					st.Comm.CorruptDropped, st.Comm.DupDropped)
			}
		}
	case "stream":
		result, err = mudbscan.ClusterStream(rows, *eps, *minPts,
			mudbscan.WithStreamWindow(*lambda, *prune), mudbscan.WithWorkers(*workers))
		if err == nil && *stats {
			window := "landmark"
			if *lambda > 0 {
				window = fmt.Sprintf("damped(lambda=%g)", *lambda)
			}
			fmt.Fprintf(stderr, "n=%d window=%s time=%v\n", len(pts), window, time.Since(start))
		}
	default:
		return usagef("unknown -mode %q (want seq, cell, auto, parallel, dist or stream)", *mode)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(stderr, "clusters=%d cores=%d noise=%d\n",
			result.NumClusters, result.NumCorePoints(), result.NumNoise())
	}
	return writeLabels(*outPath, stdout, result.Labels)
}

func readPoints(path string, stdin io.Reader) ([]geom.Point, error) {
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if strings.HasSuffix(path, ".bin") {
		return data.ReadBinary(r)
	}
	return data.ReadCSV(r)
}

func writeLabels(path string, stdout io.Writer, labels []int) error {
	var w io.Writer
	if path == "-" {
		w = stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, l := range labels {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}
