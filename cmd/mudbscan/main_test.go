package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const squareCSV = `1,1
1.1,1
1,1.1
1.1,1.1
9,9
9.1,9
9,9.1
9.1,9.1
5,5
`

func TestClusterFromCSVFile(t *testing.T) {
	in := writeTemp(t, "pts.csv", squareCSV)
	out := filepath.Join(t.TempDir(), "labels.txt")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-eps", "0.5", "-minpts", "3", "-in", in, "-out", out, "-stats"},
		nil, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	labels := strings.Fields(string(b))
	if len(labels) != 9 {
		t.Fatalf("labels=%v", labels)
	}
	if labels[8] != "-1" {
		t.Fatalf("point 8 should be noise, got %s", labels[8])
	}
	if labels[0] == labels[4] {
		t.Fatal("separated squares should differ")
	}
	if !strings.Contains(stderr.String(), "clusters=2") {
		t.Fatalf("stats output: %q", stderr.String())
	}
}

func TestClusterFromStdinToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-eps", "0.5", "-minpts", "3"},
		strings.NewReader(squareCSV), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(stdout.String())) != 9 {
		t.Fatalf("stdout: %q", stdout.String())
	}
}

func TestModes(t *testing.T) {
	for _, mode := range []string{"cell", "auto", "parallel", "dist", "stream"} {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", mode, "-ranks", "2", "-stats"},
			strings.NewReader(squareCSV), &stdout, &stderr)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if len(strings.Fields(stdout.String())) != 9 {
			t.Fatalf("mode %s stdout: %q", mode, stdout.String())
		}
	}
}

// TestCellModeMatchesSeq: the grid engine must emit exactly the labels the
// default engine does, and -mode auto -stats must name the engine it picked
// (the square CSV is 2-D, so the selector lands on cell).
func TestCellModeMatchesSeq(t *testing.T) {
	var seqOut, cellOut, autoOut, stderr bytes.Buffer
	if err := run([]string{"-eps", "0.5", "-minpts", "3"},
		strings.NewReader(squareCSV), &seqOut, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "cell", "-workers", "2"},
		strings.NewReader(squareCSV), &cellOut, &stderr); err != nil {
		t.Fatal(err)
	}
	if seqOut.String() != cellOut.String() {
		t.Fatalf("cell labels differ from seq:\n%q\n%q", seqOut.String(), cellOut.String())
	}
	stderr.Reset()
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "auto", "-stats"},
		strings.NewReader(squareCSV), &autoOut, &stderr); err != nil {
		t.Fatal(err)
	}
	if seqOut.String() != autoOut.String() {
		t.Fatal("auto labels differ from seq")
	}
	if !strings.Contains(stderr.String(), "engine=cell") {
		t.Fatalf("auto -stats must report the picked engine: %q", stderr.String())
	}
}

// TestStreamModeMatchesSeq: the streaming tier is exact, so -mode stream
// must emit the default engine's labels verbatim at any shard count; with a
// damped -lambda the early square expires into noise.
func TestStreamModeMatchesSeq(t *testing.T) {
	var seqOut, streamOut, stderr bytes.Buffer
	if err := run([]string{"-eps", "0.5", "-minpts", "3"},
		strings.NewReader(squareCSV), &seqOut, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "stream", "-workers", "4", "-stats"},
		strings.NewReader(squareCSV), &streamOut, &stderr); err != nil {
		t.Fatal(err)
	}
	if seqOut.String() != streamOut.String() {
		t.Fatalf("stream labels differ from seq:\n%q\n%q", seqOut.String(), streamOut.String())
	}
	if !strings.Contains(stderr.String(), "window=landmark") {
		t.Fatalf("stream -stats must report the window: %q", stderr.String())
	}

	// Damped: a horizon of ln(10)/0.5 ≈ 4.6 insertions forgets the first
	// square (rows 0-3) by the time the stream ends.
	var dampedOut bytes.Buffer
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "stream", "-lambda", "0.5"},
		strings.NewReader(squareCSV), &dampedOut, &stderr); err != nil {
		t.Fatal(err)
	}
	labels := strings.Fields(dampedOut.String())
	if len(labels) != 9 {
		t.Fatalf("damped stdout: %q", dampedOut.String())
	}
	for i := 0; i < 4; i++ {
		if labels[i] != "-1" {
			t.Fatalf("expired row %d labeled %s, want -1", i, labels[i])
		}
	}
}

func TestHardenedAndChaosFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-eps", "0.5", "-minpts", "3", "-mode", "dist", "-ranks", "2", "-hardened", "-stats"},
		{"-eps", "0.5", "-minpts", "3", "-mode", "dist", "-ranks", "2", "-chaos-seed", "3", "-stats"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, strings.NewReader(squareCSV), &stdout, &stderr); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		labels := strings.Fields(stdout.String())
		if len(labels) != 9 || labels[8] != "-1" {
			t.Fatalf("args %v stdout: %q", args, stdout.String())
		}
		if !strings.Contains(stderr.String(), "envBytes=") {
			t.Fatalf("args %v: reliability counters missing from stats: %q", args, stderr.String())
		}
	}
}

func TestSuggestEpsFlag(t *testing.T) {
	var csv strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", float64(i%20)*0.05, float64(i/20)*0.05)
	}
	csv.WriteString("500,500\n")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-suggest-eps", "-minpts", "5"},
		strings.NewReader(csv.String()), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	eps, err := strconv.ParseFloat(strings.TrimSpace(stdout.String()), 64)
	if err != nil || eps <= 0 {
		t.Fatalf("suggested eps %q: %v", stdout.String(), err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing eps
		{"-eps", "-1"},                    // bad eps
		{"-eps", "1", "-mode", "bogus"},   // bad mode
		{"-eps", "1", "-in", "/no/file"},  // missing input
		{"-eps", "1", "-badflag", "true"}, // bad flag
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, strings.NewReader(""), &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
