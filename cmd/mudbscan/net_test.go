package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestExitCode pins the exit-status contract: 0 for success and -h, 2 for
// usage errors, 1 for runtime errors — and a usage error is printed exactly
// once, fixing the historical double print of flag parse failures.
func TestExitCode(t *testing.T) {
	var buf bytes.Buffer
	if got := exitCode(nil, &buf); got != 0 {
		t.Fatalf("nil error: exit %d", got)
	}
	if got := exitCode(flag.ErrHelp, &buf); got != 0 {
		t.Fatalf("ErrHelp: exit %d", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("success paths printed %q", buf.String())
	}

	buf.Reset()
	if got := exitCode(usagef("bad invocation"), &buf); got != 2 {
		t.Fatalf("usage error: exit %d", got)
	}
	if n := strings.Count(buf.String(), "bad invocation"); n != 1 {
		t.Fatalf("usage error printed %d times: %q", n, buf.String())
	}

	buf.Reset()
	if got := exitCode(&usageError{err: errors.New("already shown"), printed: true}, &buf); got != 2 {
		t.Fatalf("pre-printed usage error: exit %d", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("pre-printed usage error printed again: %q", buf.String())
	}

	buf.Reset()
	if got := exitCode(errors.New("runtime failure"), &buf); got != 1 {
		t.Fatalf("runtime error: exit %d", got)
	}
	if !strings.Contains(buf.String(), "runtime failure") {
		t.Fatalf("runtime error not reported: %q", buf.String())
	}
}

// TestUsageErrorsExitTwo proves run() classifies bad invocations as usage
// errors (exit 2) and the help flag as success.
func TestUsageErrorsExitTwo(t *testing.T) {
	usage := [][]string{
		{},                                // missing eps
		{"-eps", "-1"},                    // bad eps
		{"-eps", "1", "-mode", "bogus"},   // bad mode
		{"-eps", "1", "-badflag", "true"}, // unknown flag
	}
	for _, args := range usage {
		var stdout, stderr bytes.Buffer
		err := run(args, strings.NewReader(""), &stdout, &stderr)
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("args %v: err = %v, want usage error", args, err)
		}
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
	// A runtime failure (unreadable input) must NOT be classified as usage.
	err := run([]string{"-eps", "1", "-in", "/no/such/file"}, strings.NewReader(""), &stdout, &stderr)
	var ue *usageError
	if err == nil || errors.As(err, &ue) {
		t.Fatalf("missing input: err = %v, want non-usage error", err)
	}
}

// TestNetFlagValidation walks the -net/-rank/-peers validation matrix; every
// rejection must be a usage error whose message names the offending flag.
func TestNetFlagValidation(t *testing.T) {
	peers2 := "a:1,b:2"
	cases := []struct {
		name string
		args []string
		want string // substring of the error message
	}{
		{"rank without net", []string{"-eps", "1", "-rank", "0"}, "-rank"},
		{"peers without net", []string{"-eps", "1", "-peers", peers2}, "-peers"},
		{"unknown net", []string{"-eps", "1", "-mode", "dist", "-net", "carrier-pigeon"}, "-net"},
		{"net without dist", []string{"-eps", "1", "-net", "tcp", "-rank", "0", "-peers", peers2}, "-mode"},
		{"net with dist-serial", []string{"-eps", "1", "-mode", "dist", "-dist-serial", "-net", "tcp", "-rank", "0", "-peers", peers2}, "-dist-serial"},
		{"net with chaos", []string{"-eps", "1", "-mode", "dist", "-chaos-seed", "3", "-net", "tcp", "-rank", "0", "-peers", peers2}, "-chaos-seed"},
		{"launch with rank", []string{"-eps", "1", "-mode", "dist", "-net", "launch", "-rank", "0"}, "-rank"},
		{"launch bad ranks", []string{"-eps", "1", "-mode", "dist", "-net", "launch", "-ranks", "3"}, "power of two"},
		{"tcp without peers", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-rank", "0"}, "-peers"},
		{"tcp without rank", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-peers", peers2}, "-rank"},
		{"rank out of range", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-rank", "2", "-peers", peers2}, "-rank 2"},
		{"empty peer entry", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-rank", "0", "-peers", "a:1,,c:3"}, "empty"},
		{"non-pow2 peers", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-rank", "0", "-peers", "a:1,b:2,c:3"}, "power of two"},
		{"ranks disagrees", []string{"-eps", "1", "-mode", "dist", "-net", "tcp", "-rank", "0", "-ranks", "4", "-peers", peers2}, "-ranks"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, strings.NewReader(""), &stdout, &stderr)
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("err = %v, want usage error", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("message %q does not mention %q", err.Error(), c.want)
			}
		})
	}
}

// TestNetRankProcesses runs a real 2-rank world through run() itself — two
// invocations with -net unix, sharing nothing but socket paths — and checks
// rank 0's labels match the in-process run bit for bit.
func TestNetRankProcesses(t *testing.T) {
	var want bytes.Buffer
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "dist", "-ranks", "2"},
		strings.NewReader(squareCSV), &want, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "nr")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	peers := fmt.Sprintf("%s/0.sock,%s/1.sock", dir, dir)
	in := writeTemp(t, "pts.csv", squareCSV)

	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "dist",
				"-net", "unix", "-rank", fmt.Sprint(r), "-peers", peers, "-in", in, "-stats"},
				nil, &outs[r], &bytes.Buffer{})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got := outs[0].String(); got != want.String() {
		t.Fatalf("networked labels differ:\n%q\nwant:\n%q", got, want.String())
	}
	if outs[1].Len() != 0 {
		t.Fatalf("rank 1 wrote labels: %q", outs[1].String())
	}
}

// launchHelperEnv re-enters the test binary as one launched rank process.
const launchHelperEnv = "MUDBSCAN_LAUNCH_HELPER"

// TestHelperLaunchChild is not a test: under launchHelperEnv it behaves as
// the mudbscan binary, running the arguments after "--" through run().
func TestHelperLaunchChild(t *testing.T) {
	if os.Getenv(launchHelperEnv) != "1" {
		t.Skip("helper process for the launch test")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(exitCode(run(args, os.Stdin, os.Stdout, os.Stderr), os.Stderr))
}

// TestLaunchMode drives -net launch end to end with the fork seam pointed
// back at the test binary: the parent forks 4 real rank processes over
// loopback TCP and must collect the same labels as the in-process run.
func TestLaunchMode(t *testing.T) {
	orig := childCommand
	childCommand = func(args []string) (*exec.Cmd, error) {
		full := append([]string{"-test.run=TestHelperLaunchChild$", "--"}, args...)
		cmd := exec.Command(os.Args[0], full...)
		cmd.Env = append(os.Environ(), launchHelperEnv+"=1")
		return cmd, nil
	}
	defer func() { childCommand = orig }()

	var want bytes.Buffer
	if err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "dist", "-ranks", "4"},
		strings.NewReader(squareCSV), &want, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "labels.txt")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-eps", "0.5", "-minpts", "3", "-mode", "dist", "-net", "launch",
		"-ranks", "4", "-out", out, "-stats"},
		strings.NewReader(squareCSV), &stdout, &stderr)
	if err != nil {
		t.Fatalf("launch: %v (stderr: %s)", err, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != want.String() {
		t.Fatalf("launched labels differ:\n%q\nwant:\n%q", b, want.String())
	}
	if !strings.Contains(stderr.String(), "clusters=") {
		t.Fatalf("rank 0 stats did not flow through: %q", stderr.String())
	}
}
