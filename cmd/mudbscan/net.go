// Real-network distributed execution: flag validation, the single-rank
// runner behind -net tcp|unix, and the local launcher behind -net launch.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mudbscan/internal/data"
	"mudbscan/internal/dist"
	"mudbscan/internal/geom"
	"mudbscan/internal/mpi/nettrans"
)

// netConfig is the validated form of the -net/-rank/-peers flag triple.
type netConfig struct {
	network string // "tcp" or "unix"; unset when launch is true
	launch  bool
	rank    int
	peers   []string
}

// parseNetFlags validates the real-network flags against each other and
// against the simulation flags. It returns nil when -net is absent. Every
// rejection is a usage error with a message saying what to change.
func parseNetFlags(fs *flag.FlagSet, netMode string, rank int, peers, mode string, ranks int, distSerial bool, chaosSeed int64) (*netConfig, error) {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if netMode == "" {
		switch {
		case set["rank"]:
			return nil, usagef("-rank only applies with -net tcp|unix")
		case set["peers"]:
			return nil, usagef("-peers only applies with -net tcp|unix")
		}
		return nil, nil
	}
	if netMode != "tcp" && netMode != "unix" && netMode != "launch" {
		return nil, usagef("unknown -net %q (want tcp, unix or launch)", netMode)
	}
	if mode != "dist" {
		return nil, usagef("-net requires -mode dist, got -mode %q", mode)
	}
	if distSerial {
		return nil, usagef("-dist-serial only applies to the single-process simulation; drop it when using -net")
	}
	if chaosSeed != 0 {
		return nil, usagef("-chaos-seed only applies to the single-process simulation; fault injection over sockets is test-only")
	}

	if netMode == "launch" {
		if set["rank"] || set["peers"] {
			return nil, usagef("-net launch starts every rank itself; drop -rank and -peers (use -ranks to size the world)")
		}
		if ranks < 1 || ranks&(ranks-1) != 0 {
			return nil, usagef("-ranks must be a power of two, got %d", ranks)
		}
		return &netConfig{launch: true}, nil
	}

	if peers == "" {
		return nil, usagef("-net %s needs -peers, a comma-separated list where entry i is rank i's listen address", netMode)
	}
	peerList := strings.Split(peers, ",")
	for i := range peerList {
		peerList[i] = strings.TrimSpace(peerList[i])
		if peerList[i] == "" {
			return nil, usagef("-peers entry %d is empty", i)
		}
	}
	p := len(peerList)
	if p&(p-1) != 0 {
		return nil, usagef("the world size is the -peers entry count and must be a power of two, got %d entries", p)
	}
	if set["ranks"] && ranks != p {
		return nil, usagef("-ranks %d disagrees with the %d -peers entries; drop -ranks (the peer list sizes the world)", ranks, p)
	}
	if !set["rank"] {
		return nil, usagef("-net %s needs -rank, this process's index into -peers", netMode)
	}
	if rank < 0 || rank >= p {
		return nil, usagef("-rank %d is outside the %d-entry -peers list (want 0..%d)", rank, p, p-1)
	}
	return &netConfig{network: netMode, rank: rank, peers: peerList}, nil
}

// runNetRank executes this process's rank of a multi-process world over real
// sockets. Every peer process must be started with the same dataset and
// parameters; only rank 0 writes labels and stats.
func runNetRank(cfg *netConfig, pts []geom.Point, eps float64, minPts int, showStats bool, outPath string, stdout, stderr io.Writer, start time.Time) error {
	tr, err := nettrans.New(nettrans.Config{Network: cfg.network, Rank: cfg.rank, Peers: cfg.peers})
	if err != nil {
		return err
	}
	defer tr.Drain() // idempotent; the world normally shuts the transport down itself
	result, st, err := dist.MuDBSCAND(pts, eps, minPts, len(cfg.peers), dist.Options{
		Remote: &dist.Remote{Rank: cfg.rank, Transport: tr},
	})
	if err != nil {
		return err
	}
	if cfg.rank != 0 {
		return nil // rank 0 owns the assembled clustering
	}
	if showStats {
		fmt.Fprintf(stderr, "n=%d ranks=%d net=%s m=%d halo=%d commBytes=%d wallclock=%v time=%v\n",
			len(pts), st.Ranks, cfg.network, st.NumMCs, st.HaloPoints, st.Comm.TotalBytes(),
			st.WallClock, time.Since(start))
		fmt.Fprintf(stderr, "reliability: envBytes=%d retx=%d timeouts=%d corruptDropped=%d dupDropped=%d\n",
			st.Comm.EnvelopeBytes, st.Comm.Retransmits, st.Comm.Timeouts,
			st.Comm.CorruptDropped, st.Comm.DupDropped)
		fmt.Fprintf(stderr, "clusters=%d cores=%d noise=%d\n",
			result.NumClusters, result.NumCorePoints(), result.NumNoise())
	}
	return writeLabels(outPath, stdout, result.Labels)
}

// childCommand builds the command for one launched rank process. Tests
// override it to re-enter the test binary instead of os.Executable.
var childCommand = func(args []string) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own executable: %w", err)
	}
	return exec.Command(exe, args...), nil
}

// runLaunch forks ranks rank processes on loopback TCP and waits for them.
// The already-parsed dataset is materialised once into a temporary binary
// file so every child reads bit-identical floats regardless of how the
// parent's input was formatted; rank 0's labels and stats flow through to
// the parent's own -out/-stats destinations.
func runLaunch(ranks int, pts []geom.Point, eps float64, minPts int, showStats bool, outPath string, stdout, stderr io.Writer) error {
	addrs, cleanupAddrs, err := nettrans.ReserveAddrs("tcp", ranks)
	if err != nil {
		return err
	}
	defer cleanupAddrs()

	dir, err := os.MkdirTemp("", "mudbscan-launch-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	inFile := filepath.Join(dir, "points.bin")
	f, err := os.Create(inFile)
	if err != nil {
		return err
	}
	if err := data.WriteBinary(f, pts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	peerList := strings.Join(addrs, ",")
	cmds := make([]*exec.Cmd, ranks)
	// Only rank 0 writes to the parent's streams directly; the other ranks
	// capture stderr privately — exec copies each child's pipe from its own
	// goroutine, so sharing one writer across children would interleave (and,
	// for non-concurrency-safe writers, race).
	capture := make([]*bytes.Buffer, ranks)
	for r := 0; r < ranks; r++ {
		args := []string{
			"-mode", "dist", "-net", "tcp",
			"-rank", strconv.Itoa(r), "-peers", peerList,
			"-eps", strconv.FormatFloat(eps, 'g', -1, 64),
			"-minpts", strconv.Itoa(minPts),
			"-in", inFile,
		}
		if r == 0 {
			if outPath != "-" {
				args = append(args, "-out", outPath)
			}
			if showStats {
				args = append(args, "-stats")
			}
		}
		cmd, err := childCommand(args)
		if err != nil {
			return err
		}
		if r == 0 {
			if outPath == "-" {
				cmd.Stdout = stdout
			}
			cmd.Stderr = stderr
		} else {
			capture[r] = &bytes.Buffer{}
			cmd.Stderr = capture[r]
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Start(); err != nil {
			for i := 0; i < r; i++ {
				cmds[i].Process.Kill()
				cmds[i].Wait()
			}
			return fmt.Errorf("starting rank %d: %w", r, err)
		}
	}
	var firstErr error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			if r != 0 && capture[r].Len() > 0 {
				firstErr = fmt.Errorf("rank %d: %w\n%s", r, err, strings.TrimSpace(capture[r].String()))
			} else {
				firstErr = fmt.Errorf("rank %d: %w", r, err)
			}
		}
	}
	return firstErr
}
