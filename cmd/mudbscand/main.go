// Command mudbscand runs the μDBSCAN clustering daemon and its client: a
// persistent clustering-as-a-service process that accepts datasets and jobs
// from many concurrent tenants over TCP or unix sockets.
//
// Usage:
//
//	mudbscand serve   -addr :9099 [-net tcp|unix] [-workers 4]
//	                  [-queue 64] [-queue-tenant 8] [-cache 128]
//	mudbscand cluster -addr host:port -eps 0.5 -minpts 5
//	                  [-engine auto|seq|shared|dist|stream|cell] [-param N]
//	                  [-tenant name] [-in points.csv] [-out labels.txt]
//	mudbscand query   -addr host:port -eps 0.5 -minpts 5 -point 1.0,2.0
//	                  [-tenant name] [-in points.csv]
//	mudbscand stats   -addr host:port [-tenant name]
//	mudbscand ping    -addr host:port [-tenant name]
//
// serve blocks until SIGINT/SIGTERM, then shuts down gracefully: queued
// jobs are rejected with a typed shutting-down error, in-flight jobs
// finish, and every connection closes. The client subcommands upload the
// dataset (content-addressed: identical uploads are free), run one
// operation, and print the outcome in the same formats as cmd/mudbscan.
//
// Exit status: 0 on success, 1 on runtime errors, 2 on usage errors.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"mudbscan/internal/data"
	"mudbscan/internal/geom"
	"mudbscan/internal/server"
)

func main() {
	os.Exit(exitCode(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr), os.Stderr))
}

// usageError marks an error caused by the invocation rather than the run;
// printed records whether the flag package already reported it.
type usageError struct {
	err     error
	printed bool
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// exitCode maps run's error to the process exit status: 0 for success and
// -h/-help, 2 for usage errors (reported exactly once), 1 for everything
// else.
func exitCode(err error, stderr io.Writer) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.printed {
			fmt.Fprintln(stderr, "mudbscand:", ue.err)
		}
		return 2
	}
	fmt.Fprintln(stderr, "mudbscand:", err)
	return 1
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usagef("want a subcommand: serve, cluster, query, stats or ping")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "serve":
		return runServe(rest, stdout, stderr)
	case "cluster", "query", "stats", "ping":
		return runClient(sub, rest, stdin, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stderr, "usage: mudbscand <serve|cluster|query|stats|ping> [flags]")
		return flag.ErrHelp
	default:
		return usagef("unknown subcommand %q (want serve, cluster, query, stats or ping)", sub)
	}
}

func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mudbscand serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:0", "listen address (host:port, or socket path with -net unix)")
		netw    = fs.String("net", "tcp", "listener network: tcp or unix")
		workers = fs.Int("workers", 0, "clustering worker pool size (0 = GOMAXPROCS)")
		queueT  = fs.Int("queue", 0, "total queued-job bound (0 = default 64)")
		queueP  = fs.Int("queue-tenant", 0, "per-tenant queued-job bound (0 = default 8)")
		cache   = fs.Int("cache", 0, "result-cache entries (0 = default 128)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &usageError{err: err, printed: true}
	}
	if *netw != "tcp" && *netw != "unix" {
		return usagef("unknown -net %q (want tcp or unix)", *netw)
	}
	ln, err := net.Listen(*netw, *addr)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		QueueTotal:      *queueT,
		QueuePerTenant:  *queueP,
		ResultCacheSize: *cache,
	})
	// The bound address line is the readiness signal scripts wait for.
	fmt.Fprintf(stdout, "mudbscand listening on %s://%s\n", *netw, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "mudbscand: %v, shutting down\n", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-errc
	case err := <-errc:
		srv.Close()
		return err
	}
}

func runClient(sub string, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mudbscand "+sub, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr   = fs.String("addr", "", "daemon address (required)")
		netw   = fs.String("net", "tcp", "daemon network: tcp or unix")
		tenant = fs.String("tenant", "cli", "tenant name for fairness accounting")
		eps    = fs.Float64("eps", 0, "DBSCAN ε radius")
		minPts = fs.Int("minpts", 5, "DBSCAN MinPts density threshold")
		engine = fs.String("engine", "auto", "engine: auto, seq, shared, dist, stream or cell")
		param  = fs.Int("param", 0, "engine parameter: shared workers or dist ranks (0 = engine default)")
		point  = fs.String("point", "", "query point for the query subcommand (comma-separated)")
		inPath = fs.String("in", "-", "input dataset (CSV, or .bin binary; - = stdin)")
		out    = fs.String("out", "-", "output file (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &usageError{err: err, printed: true}
	}
	if *addr == "" {
		return usagef("%s: -addr is required", sub)
	}
	var eng server.Engine
	if sub == "cluster" || sub == "query" {
		// Validate the job flags before dialing so usage errors never need
		// a live daemon.
		if *eps <= 0 {
			return usagef("%s: -eps is required and must be positive", sub)
		}
		var err error
		if eng, err = server.ParseEngine(*engine); err != nil {
			return usagef("%v", err)
		}
		if sub == "query" && *point == "" {
			return usagef("query: -point is required")
		}
	}
	cl, err := server.Dial(*netw, *addr, *tenant)
	if err != nil {
		return err
	}
	defer cl.Close()

	switch sub {
	case "ping":
		if err := cl.Ping(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "ok")
		return nil
	case "stats":
		m, err := cl.Stats()
		if err != nil {
			return err
		}
		// Render sorted so scripted diffs are stable.
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name) //mulint:allow determinism/maprange sorted immediately below
		}
		sort.Strings(names)
		w := bufio.NewWriter(stdout)
		for _, name := range names {
			fmt.Fprintf(w, "%s %d\n", name, m[name])
		}
		return w.Flush()
	}

	rows, err := readRows(*inPath, stdin)
	if err != nil {
		return err
	}
	id, err := cl.Put(rows)
	if err != nil {
		return err
	}

	switch sub {
	case "cluster":
		r, err := cl.Cluster(id, *eps, *minPts, eng, *param)
		if err != nil {
			return err
		}
		return writeLabels(*out, stdout, r.Labels)
	case "query":
		pt, err := parsePoint(*point)
		if err != nil {
			return usagef("query: %v", err)
		}
		ids, err := cl.EpsQuery(id, *eps, *minPts, pt)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(stdout)
		for _, i := range ids {
			fmt.Fprintln(w, i)
		}
		return w.Flush()
	}
	return usagef("unknown subcommand %q", sub)
}

func parsePoint(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	pt := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -point coordinate %q", p)
		}
		pt[i] = v
	}
	return pt, nil
}

func readRows(path string, stdin io.Reader) ([][]float64, error) {
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var (
		pts []geom.Point
		err error
	)
	if strings.HasSuffix(path, ".bin") {
		pts, err = data.ReadBinary(r)
	} else {
		pts, err = data.ReadCSV(r)
	}
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = p
	}
	return rows, nil
}

func writeLabels(path string, stdout io.Writer, labels []int) error {
	var w io.Writer
	if path == "-" {
		w = stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, l := range labels {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}
