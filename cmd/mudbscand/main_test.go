package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mudbscan"
	"mudbscan/internal/data"
	"mudbscan/internal/geom"
	"mudbscan/internal/server"
)

// startDaemon runs an in-process daemon on loopback for the CLI tests (the
// serve subcommand itself is signal-driven, so tests exercise the same
// server through the library entry point).
func startDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Workers: 2})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func csvFor(t *testing.T) (string, [][]float64) {
	t.Helper()
	cc := data.ConformanceCases()[0]
	var sb strings.Builder
	rows := make([][]float64, len(cc.Pts))
	for i, p := range cc.Pts {
		rows[i] = p
		for j, v := range p {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", v)
		}
		sb.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "pts.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, rows
}

func TestClusterSubcommandMatchesLibrary(t *testing.T) {
	addr := startDaemon(t)
	path, rows := csvFor(t)
	cc := data.ConformanceCases()[0]

	var stdout, stderr bytes.Buffer
	err := run([]string{"cluster", "-addr", addr, "-eps", fmt.Sprint(cc.Eps),
		"-minpts", fmt.Sprint(cc.MinPts), "-engine", "seq", "-in", path},
		strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatalf("cluster: %v (stderr: %s)", err, stderr.String())
	}
	want, err := mudbscan.Cluster(rows, cc.Eps, cc.MinPts)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, line := range strings.Fields(stdout.String()) {
		var l int
		fmt.Sscan(line, &l)
		got = append(got, l)
	}
	if !reflect.DeepEqual(want.Labels, got) {
		t.Fatal("daemon-served labels differ from direct library call")
	}
}

func TestPingStatsAndQuerySubcommands(t *testing.T) {
	addr := startDaemon(t)
	path, _ := csvFor(t)

	var stdout, stderr bytes.Buffer
	if err := run([]string{"ping", "-addr", addr}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if strings.TrimSpace(stdout.String()) != "ok" {
		t.Fatalf("ping printed %q", stdout.String())
	}

	stdout.Reset()
	if err := run([]string{"query", "-addr", addr, "-eps", "0.5", "-minpts", "5",
		"-point", "10,10,10", "-in", path}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("query: %v", err)
	}

	// A malformed -point coordinate is a usage error even though it is only
	// parsed after the dataset upload.
	var perr bytes.Buffer
	err := run([]string{"query", "-addr", addr, "-eps", "0.5", "-minpts", "5",
		"-point", "1,x,3", "-in", path}, strings.NewReader(""), &stdout, &perr)
	if code := exitCode(err, &perr); code != 2 {
		t.Fatalf("bad -point coordinate exited %d, want 2", code)
	}

	stdout.Reset()
	if err := run([]string{"stats", "-addr", addr}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// puts 2: the failed bad-point query still uploads before parsing.
	if !strings.Contains(stdout.String(), "puts 2") || !strings.Contains(stdout.String(), "pings 1") {
		t.Fatalf("stats output missing counters:\n%s", stdout.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the serve goroutine to write while
// the test polls for the readiness line.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestServeSubcommand runs the real serve loop: wait for the readiness
// line, serve a ping through it, then deliver SIGINT and require a clean,
// error-free shutdown.
func TestServeSubcommand(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", "127.0.0.1:0", "-workers", "1"},
			strings.NewReader(""), &out, &errOut)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "tcp://"); i >= 0 && strings.Contains(s[i:], "\n") {
			line := s[i+len("tcp://"):]
			addr = strings.TrimSpace(line[:strings.Index(line, "\n")])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("no readiness line within 5s; stdout %q stderr %q", out.String(), errOut.String())
	}

	var pout, perr bytes.Buffer
	if err := run([]string{"ping", "-addr", addr}, strings.NewReader(""), &pout, &perr); err != nil {
		t.Fatalf("ping against serve subcommand: %v", err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down within 5s of SIGINT")
	}
}

// TestClusterFromBinaryToFile covers the .bin reader and the -out writer.
func TestClusterFromBinaryToFile(t *testing.T) {
	addr := startDaemon(t)
	cc := data.ConformanceCases()[0]
	dir := t.TempDir()
	in := filepath.Join(dir, "pts.bin")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, len(cc.Pts))
	copy(pts, cc.Pts)
	if err := data.WriteBinary(f, pts); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "labels.txt")
	var stdout, stderr bytes.Buffer
	err = run([]string{"cluster", "-addr", addr, "-eps", fmt.Sprint(cc.Eps),
		"-minpts", fmt.Sprint(cc.MinPts), "-engine", "seq", "-in", in, "-out", outPath},
		strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatalf("cluster: %v (stderr: %s)", err, stderr.String())
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Fields(string(b))); got != len(cc.Pts) {
		t.Fatalf("-out file holds %d labels, want %d", got, len(cc.Pts))
	}
}

// TestRuntimeErrorsExitOne: failures of the run, not the invocation, must
// exit 1 — an unreachable daemon and a missing input file.
func TestRuntimeErrorsExitOne(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	addr := startDaemon(t)
	cases := [][]string{
		{"ping", "-addr", dead},
		{"cluster", "-addr", addr, "-eps", "1", "-in", filepath.Join(t.TempDir(), "nope.csv")},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		err := run(args, strings.NewReader(""), &stdout, &stderr)
		if code := exitCode(err, &stderr); code != 1 {
			t.Fatalf("args %v: exit code %d, want 1 (err %v)", args, code, err)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"help"}, strings.NewReader(""), &stdout, &stderr)
	if code := exitCode(err, &stderr); code != 0 {
		t.Fatalf("help exited %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"warp"},
		{"cluster"},                             // missing -addr
		{"cluster", "-addr", "x", "-eps", "-1"}, // eps validated before dialing
		{"cluster", "-addr", "x", "-eps", "1", "-engine", "warp"},
		{"query", "-addr", "x", "-eps", "1"}, // missing -point
		{"serve", "-net", "carrier-pigeon"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		err := run(args, strings.NewReader(""), &stdout, &stderr)
		if code := exitCode(err, &stderr); code != 2 {
			t.Fatalf("args %v: exit code %d, want 2 (err %v)", args, code, err)
		}
	}
}
