// Command datagen generates the synthetic datasets this repository uses as
// analogues of the paper's evaluation corpora.
//
// Usage:
//
//	datagen -kind galaxy -n 100000 -dim 3 -seed 1 -format csv -out pts.csv
//
// Kinds: galaxy (Millennium-Run-like), road (3D road network-like),
// household (UCI household power-like), bio (KDD bio-like high dimension),
// blobs (Gaussian mixture + noise), uniform.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mudbscan/internal/data"
	"mudbscan/internal/geom"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "blobs", "dataset kind: galaxy, road, household, bio, blobs, uniform")
		n      = fs.Int("n", 10000, "number of points")
		dim    = fs.Int("dim", 3, "dimensionality (road is always 3)")
		seed   = fs.Int64("seed", 1, "generator seed")
		format = fs.String("format", "csv", "output format: csv or bin")
		out    = fs.String("out", "-", "output file (- = stdout)")
		k      = fs.Int("k", 4, "blob count (kind=blobs)")
		spread = fs.Float64("spread", 0.3, "blob spread (kind=blobs)")
		noise  = fs.Float64("noise", 0.1, "noise fraction (kind=blobs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *dim <= 0 {
		return fmt.Errorf("-n and -dim must be positive")
	}

	var pts []geom.Point
	switch *kind {
	case "galaxy":
		pts = data.GalaxyLike(*n, *dim, *seed)
	case "road":
		pts = data.RoadNetworkLike(*n, *seed)
	case "household":
		pts = data.HouseholdLike(*n, *dim, *seed)
	case "bio":
		pts = data.BioLike(*n, *dim, *seed)
	case "blobs":
		pts = data.Blobs(*n, *dim, *k, *spread, *noise, *seed)
	case "uniform":
		pts = data.Uniform(*n, *dim, 100, *seed)
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	var w io.Writer
	if *out == "-" {
		w = stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		return data.WriteCSV(w, pts)
	case "bin":
		return data.WriteBinary(w, pts)
	default:
		return fmt.Errorf("unknown -format %q (want csv or bin)", *format)
	}
}
