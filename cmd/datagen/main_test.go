package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mudbscan/internal/data"
)

func TestGenerateCSVToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-kind", "blobs", "-n", "100", "-dim", "2"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	pts, err := data.ReadCSV(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 || len(pts[0]) != 2 {
		t.Fatalf("generated %d pts of dim %d", len(pts), len(pts[0]))
	}
}

func TestAllKindsAndBinary(t *testing.T) {
	for _, kind := range []string{"galaxy", "road", "household", "bio", "blobs", "uniform"} {
		out := filepath.Join(t.TempDir(), kind+".bin")
		var stdout, stderr bytes.Buffer
		err := run([]string{"-kind", kind, "-n", "200", "-dim", "3", "-format", "bin", "-out", out},
			&stdout, &stderr)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestDatagenErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-n", "0"},
		{"-format", "bogus"},
		{"-nope"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestDeterministicAcrossInvocations(t *testing.T) {
	var a, b, e bytes.Buffer
	if err := run([]string{"-kind", "galaxy", "-n", "100", "-seed", "9"}, &a, &e); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "galaxy", "-n", "100", "-seed", "9"}, &b, &e); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce the same dataset")
	}
	if !strings.Contains(a.String(), "\n") {
		t.Fatal("expected CSV lines")
	}
}
