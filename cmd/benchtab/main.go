// Command benchtab regenerates the paper's evaluation tables and figures on
// scaled-down dataset analogues.
//
// Usage:
//
//	benchtab -exp table2            # one experiment
//	benchtab -exp all -scale 0.25   # everything, quarter-size datasets
//	benchtab -list                  # show available experiments
//
// Experiments: table1..table8, fig5..fig7, shared, wallclock, ablations,
// kernels, chaos, all. The tables and figures use the serial rank simulation
// (isolation timing, the paper's methodology); wallclock additionally runs
// the concurrent driver and reports real end-to-end wall-clock next to the
// simulated totals; chaos compares the trusting transport against the
// hardened envelope/ack path and reports fault-absorption counters under
// deterministic fault plans. See DESIGN.md §4 for the mapping to the paper
// (§11 for the fault model), and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mudbscan/internal/bench"
	"mudbscan/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment to run (see -list), or \"all\"")
		scale      = fs.Float64("scale", 1.0, "dataset size multiplier")
		ranks      = fs.Int("ranks", 32, "simulated rank count for distributed experiments")
		list       = fs.Bool("list", false, "list available experiments")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.Name, e.Description)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required (or -list)")
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	runErr := bench.RunExperiment(*exp, bench.Config{
		Out:   stdout,
		Scale: *scale,
		Ranks: *ranks,
	})
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}
