package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2", "fig7", "ablations"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestRunOneExperimentTiny(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "table3", "-scale", "0.02", "-ranks", "4"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Table III") {
		t.Fatalf("output: %q", stdout.String())
	}
}

func TestBenchtabErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"-exp", "bogus"}, {"-nope"}} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
