package mudbscan_test

import (
	"fmt"

	"mudbscan"
)

// Cluster two tight groups of points and an outlier.
func ExampleCluster() {
	points := [][]float64{
		{1.0, 1.0}, {1.1, 1.0}, {1.0, 1.1},
		{9.0, 9.0}, {9.1, 9.0}, {9.0, 9.1},
		{5.0, 5.0},
	}
	result, err := mudbscan.Cluster(points, 0.5, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", result.NumClusters)
	fmt.Println("labels:", result.Labels)
	// Output:
	// clusters: 2
	// labels: [0 0 0 1 1 1 -1]
}

// The distributed mode produces exactly the same clustering.
func ExampleClusterDistributed() {
	points := [][]float64{
		{1.0, 1.0}, {1.1, 1.0}, {1.0, 1.1},
		{9.0, 9.0}, {9.1, 9.0}, {9.0, 9.1},
		{5.0, 5.0},
	}
	result, stats, err := mudbscan.ClusterDistributed(points, 0.5, 3, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", result.NumClusters, "ranks:", stats.Ranks)
	// Output:
	// clusters: 2 ranks: 2
}

// Inspect how many ε-neighborhood queries the micro-clusters saved.
func ExampleClusterWithStats() {
	points := make([][]float64, 0, 100)
	for i := 0; i < 100; i++ {
		points = append(points, []float64{float64(i%10) * 0.01, float64(i/10) * 0.01})
	}
	_, stats, err := mudbscan.ClusterWithStats(points, 1.0, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("micro-clusters:", stats.NumMCs)
	fmt.Println("queries:", stats.Queries)
	// Output:
	// micro-clusters: 1
	// queries: 0
}
