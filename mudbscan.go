// Package mudbscan is an exact, scalable DBSCAN library — a from-scratch Go
// implementation of "μDBSCAN: An Exact Scalable DBSCAN Algorithm for Big
// Data Exploiting Spatial Locality" (Sarma et al., IEEE CLUSTER 2019).
//
// μDBSCAN groups points into micro-clusters (ε-radius hyper-spheres around
// data points) indexed in a two-level μR-tree. Dense micro-clusters prove
// most points core *without* running their ε-neighborhood queries (43–96%
// of queries saved on the paper's workloads), and the remaining queries are
// confined to the few reachable micro-clusters within 3ε. The produced
// clustering is exactly that of textbook DBSCAN: the same core points, the
// same partition of core points into clusters, the same number of clusters
// and the same noise set.
//
// Three execution modes share the same exact semantics:
//
//   - Cluster: sequential μDBSCAN.
//   - ClusterParallel: multi-core shared-memory μDBSCAN.
//   - ClusterDistributed: μDBSCAN-D over simulated message-passing ranks
//     (spatial kd partitioning, ε-halo exchange, local clustering, query-free
//     merge); ranks run truly concurrently unless WithSerialSimulation
//     selects the paper-table timing methodology.
//
// The usual entry point:
//
//	result, err := mudbscan.Cluster(points, eps, minPts)
//	for i, label := range result.Labels {
//	    // label == mudbscan.Noise or a cluster id in [0, result.NumClusters)
//	}
package mudbscan

import (
	"fmt"
	"math"
	"runtime"

	"mudbscan/internal/cell"
	"mudbscan/internal/chaos"
	"mudbscan/internal/clustering"
	"mudbscan/internal/core"
	"mudbscan/internal/dist"
	"mudbscan/internal/geom"
	"mudbscan/internal/shared"
)

// Result is a clustering outcome: Labels[i] is the cluster of point i
// (Noise for noise points), Core[i] reports core-point status, and
// NumClusters counts the clusters.
type Result = clustering.Result

// Noise is the label assigned to noise points.
const Noise = clustering.Noise

// SeqStats reports the work a sequential run performed: micro-cluster
// count, queries executed and saved, distance calculations, and the
// wall-clock split over the algorithm's four steps.
type SeqStats = core.Stats

// ParStats reports the work of a shared-memory parallel run.
type ParStats = shared.Stats

// DistStats reports the work and communication of a distributed run.
type DistStats = dist.Stats

// Engine names one of the exact single-host engines behind Cluster and
// ClusterWithStats. All engines produce byte-identical results — the same
// Labels, Core flags and NumClusters on every input — they differ only in
// how the ε-neighborhood work is organized, and therefore in speed.
type Engine int

const (
	// EngineMuTree is the paper's μR-tree engine (the default): points are
	// grouped into ε-sphere micro-clusters indexed by a two-level R-tree.
	// Its cost grows gently with dimensionality, making it the safe choice
	// for d ≳ 4.
	EngineMuTree Engine = iota
	// EngineCell is the grid engine (cells of side ε/√d over a sorted
	// non-empty-cell table): any two points sharing a cell are ε-neighbors,
	// so populated cells go core wholesale and the remaining queries scan a
	// few adjacent cells. It is typically the fastest engine at d ≤ 3 but
	// its neighbor-cell enumeration grows exponentially in d. Runs
	// parallel over cells — WithWorkers caps it, default GOMAXPROCS.
	EngineCell
	// EngineAuto profiles the dataset with cheap statistics (dimensionality
	// plus the cell-occupancy of a bounded sample) and picks between
	// EngineMuTree and EngineCell; ChooseEngine exposes the decision.
	EngineAuto
)

// String returns the engine's canonical short name, matching the names the
// mudbscan CLI and the mudbscand wire protocol use.
func (e Engine) String() string {
	switch e {
	case EngineMuTree:
		return "mu"
	case EngineCell:
		return "cell"
	case EngineAuto:
		return "auto"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// WithEngine selects the engine for Cluster and ClusterWithStats
// (default EngineMuTree). ClusterParallel and ClusterDistributed are
// themselves engines — their own parallel decompositions of the μR-tree
// algorithm — and ignore this option.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// ChooseEngine reports the concrete engine EngineAuto would run on this
// input: the decision is made from cheap statistics (n, d, and the
// cell-occupancy distribution of a deterministic ≤1024-point sample) without
// building any index, so it costs microseconds even on large inputs.
// Degenerate inputs — empty data or a non-positive or non-finite eps — fall
// back to EngineMuTree.
func ChooseEngine(points [][]float64, eps float64, minPts int) Engine {
	if len(points) == 0 || eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return EngineMuTree
	}
	if cell.Decide(cell.Sample(points, eps, minPts)) {
		return EngineCell
	}
	return EngineMuTree
}

// config collects the option knobs.
type config struct {
	fanout       int
	disableWndq  bool
	workers      int
	sampleSize   int
	seed         int64
	distSerial   bool
	hardened     bool
	faultSeed    *int64
	scratch      *Scratch
	engine       Engine
	streamLambda float64
	streamPrune  float64
}

// Scratch is reusable query-scratch storage lent to clustering runs: the
// per-worker ε-query arenas of PR 3's allocation-free *Into tier, owned by
// the caller instead of the run, so a long-lived worker (the mudbscand job
// pool) keeps warm buffers across requests. Pass one Scratch per serving
// worker via WithScratch; a Scratch must never be lent to two concurrent
// runs. The zero value is not usable — construct with NewScratch.
type Scratch struct {
	arenas []*core.Arena
}

// NewScratch creates an empty scratch pool; runs grow it on demand.
func NewScratch() *Scratch { return &Scratch{} }

// grown returns the first n arenas, creating any that do not exist yet.
func (s *Scratch) grown(n int) []*core.Arena {
	for len(s.arenas) < n {
		s.arenas = append(s.arenas, &core.Arena{})
	}
	return s.arenas[:n]
}

// WithScratch lends s to the run: Cluster borrows its first arena,
// ClusterParallel one arena per worker. Grown buffers return to s when the
// run completes. ClusterDistributed ignores it (each simulated rank owns
// per-run scratch).
func WithScratch(s *Scratch) Option { return func(c *config) { c.scratch = s } }

// Option customizes a clustering run.
type Option func(*config)

// WithRTreeFanout sets the node capacity of both μR-tree levels
// (default 16).
func WithRTreeFanout(m int) Option { return func(c *config) { c.fanout = m } }

// WithoutQueryReduction disables core identification without queries; every
// point is queried, as in classic DBSCAN. The result is unchanged, only
// slower — this knob exists for measurement.
func WithoutQueryReduction() Option { return func(c *config) { c.disableWndq = true } }

// WithWorkers sets the goroutine count for ClusterParallel
// (default GOMAXPROCS).
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithSampleSize sets the per-rank sample size for the sampling-based
// median partitioning of ClusterDistributed (default 0 = exact medians).
func WithSampleSize(s int) Option { return func(c *config) { c.sampleSize = s } }

// WithSeed seeds the partitioning sampler of ClusterDistributed.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithSerialSimulation makes ClusterDistributed execute its compute phases
// one rank at a time, each timed in isolation — the single-host simulation
// methodology behind the paper's tables — instead of the default truly
// concurrent rank execution. The clustering is identical either way; only
// the timing statistics' meaning changes (see DistStats.WallClock).
func WithSerialSimulation() Option { return func(c *config) { c.distSerial = true } }

// WithHardenedComms makes ClusterDistributed wrap every point-to-point
// message in a sequence-numbered, checksummed envelope with ack/retransmit
// and duplicate suppression. The clustering is byte-identical to the default
// trusting transport; the run additionally tolerates message loss,
// duplication, reordering, and corruption, and terminates with an error
// wrapping dist.ErrRankLost instead of hanging when a rank becomes
// permanently unreachable.
func WithHardenedComms() Option { return func(c *config) { c.hardened = true } }

// WithFaultInjection routes ClusterDistributed's messages through a
// deterministic fault-injecting network (drops, duplicates, reordering,
// delays, and bit corruption, reproducible from the seed) and implies
// WithHardenedComms. The clustering remains exact — this knob exists for
// testing and for demonstrating the reliability layer.
func WithFaultInjection(seed int64) Option {
	return func(c *config) { c.hardened = true; c.faultSeed = &seed }
}

// validate checks the inputs shared by all entry points and converts the
// point rows into the internal representation without copying coordinates.
func validate(points [][]float64, eps float64, minPts int) ([]geom.Point, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("mudbscan: eps must be a positive finite number, got %g", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("mudbscan: minPts must be at least 1, got %d", minPts)
	}
	if len(points) == 0 {
		return nil, nil
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("mudbscan: points must have at least one dimension")
	}
	pts := make([]geom.Point, len(points))
	for i, row := range points {
		if len(row) != dim {
			return nil, fmt.Errorf("mudbscan: point %d has %d coordinates, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("mudbscan: point %d coordinate %d is not finite", i, j)
			}
		}
		pts[i] = geom.Point(row)
	}
	return pts, nil
}

// Cluster returns the exact DBSCAN clustering of points under the given ε
// and MinPts, computed by the engine WithEngine selects (default the
// sequential μR-tree engine; see Engine).
func Cluster(points [][]float64, eps float64, minPts int, opts ...Option) (*Result, error) {
	r, _, err := ClusterWithStats(points, eps, minPts, opts...)
	return r, err
}

// ClusterWithStats is Cluster plus the run's work statistics. Under
// EngineCell the micro-cluster fields describe grid cells instead (NumMCs is
// the non-empty-cell count, QueriesSaved the points proven core by the
// dense-cell shortcut) and the step split folds the grid's five phases into
// the paper's four.
func ClusterWithStats(points [][]float64, eps float64, minPts int, opts ...Option) (*Result, *SeqStats, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pts, err := validate(points, eps, minPts)
	if err != nil {
		return nil, nil, err
	}
	engine := cfg.engine
	if engine == EngineAuto {
		engine = EngineMuTree
		if len(pts) > 0 && cell.Decide(cell.Sample(pts, eps, minPts)) {
			engine = EngineCell
		}
	}
	if engine == EngineCell {
		copts := cell.Options{Workers: cfg.workers}
		if cfg.scratch != nil {
			w := cfg.workers
			if w <= 0 {
				w = runtime.GOMAXPROCS(0) // cell.Run's own default
			}
			copts.Arenas = cfg.scratch.grown(w)
		}
		r, st := cell.Run(pts, eps, minPts, copts)
		return r, cellSeqStats(st), nil
	}
	copts := core.Options{
		Fanout:      cfg.fanout,
		DisableWndq: cfg.disableWndq,
	}
	if cfg.scratch != nil {
		copts.Arena = cfg.scratch.grown(1)[0]
	}
	r, st := core.Run(pts, eps, minPts, copts)
	return r, st, nil
}

// cellSeqStats adapts the cell engine's statistics to the SeqStats shape so
// ClusterWithStats reports one stats type whichever engine ran: non-empty
// cells stand in for micro-clusters, dense-cell core proofs for wndq-saved
// queries, and the grid's Build/Adjacency/Mark+Connect/Assign phases for the
// paper's four steps.
func cellSeqStats(st *cell.Stats) *SeqStats {
	return &SeqStats{
		NumMCs:       st.Cells,
		Queries:      st.Queries,
		QueriesSaved: st.QueriesSaved,
		DistCalcs:    st.DistCalcs,
		WndqFromMCs:  st.QueriesSaved,
		Steps: core.StepTimes{
			TreeConstruction: st.Steps.Build,
			FindingReachable: st.Steps.Adjacency,
			Clustering:       st.Steps.Mark + st.Steps.Connect,
			PostProcessing:   st.Steps.Assign,
		},
	}
}

// ClusterParallel runs the multi-core shared-memory μDBSCAN. The result is
// exact; which cluster a border point joins may differ between runs (as
// DBSCAN permits).
func ClusterParallel(points [][]float64, eps float64, minPts int, opts ...Option) (*Result, *ParStats, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pts, err := validate(points, eps, minPts)
	if err != nil {
		return nil, nil, err
	}
	sopts := shared.Options{
		Workers: cfg.workers,
		Fanout:  cfg.fanout,
	}
	if cfg.scratch != nil {
		w := cfg.workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0) // shared.Run's own default
		}
		sopts.Arenas = cfg.scratch.grown(w)
	}
	r, st := shared.Run(pts, eps, minPts, sopts)
	return r, st, nil
}

// ClusterDistributed runs μDBSCAN-D over the given number of simulated
// message-passing ranks (a power of two). The result is exact and identical
// to Cluster's for every rank count.
func ClusterDistributed(points [][]float64, eps float64, minPts, ranks int, opts ...Option) (*Result, *DistStats, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pts, err := validate(points, eps, minPts)
	if err != nil {
		return nil, nil, err
	}
	if ranks < 1 {
		return nil, nil, fmt.Errorf("mudbscan: ranks must be at least 1, got %d", ranks)
	}
	exec := dist.ExecConcurrent
	if cfg.distSerial {
		exec = dist.ExecSerial
	}
	dopts := dist.Options{
		SampleSize: cfg.sampleSize,
		Seed:       cfg.seed,
		Core:       core.Options{Fanout: cfg.fanout, DisableWndq: cfg.disableWndq},
		Exec:       exec,
		Hardened:   cfg.hardened,
	}
	if cfg.faultSeed != nil {
		dopts.Transport = chaos.New(chaos.Eventual(*cfg.faultSeed))
	}
	return dist.MuDBSCAND(pts, eps, minPts, ranks, dopts)
}
